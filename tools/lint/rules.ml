open Parsetree

type kind = Lib | Bin | Bench | Test | Other

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressible : bool;
}

let rules =
  [ ( "float-eq",
      "=/<>/==/!=/compare on float-evident operands; use an epsilon helper \
       (LP bound and congestion math must not rely on exact float equality)" );
    ( "unsafe-indexing",
      "Array/Bytes/String unsafe accessors, and external declarations bound to \
       unchecked %caml_*u load/store primitives; allowed only in the hot-path \
       module allowlist and only with a justification annotation" );
    ( "catch-all-exn",
      "'with _ ->' or a handler that binds the exception and returns (); \
       swallows Out_of_memory, Stack_overflow and every programming error" );
    ( "no-print-in-lib",
      "direct printf/print_*/prerr_* in lib/; route output through \
       Sim.Report, Util.Table or a Logs source" );
    ( "partial-stdlib",
      "List.hd/tl/nth, Option.get, Hashtbl.find outside tests; use the \
       _opt variant or pattern-match, or justify the invariant" );
    ( "mli-required",
      "every lib/**/*.ml must have a matching .mli so interfaces stay \
       deliberate" );
    ( "hashtbl-order",
      "[typed] Hashtbl.fold/iter whose body accumulates into an order-sensitive \
       structure (list cons, float +./*., string ^, list @, Buffer.add) without \
       piping the result through a sort; hash-bucket order is not a stable order" );
    ( "poly-compare",
      "[typed] polymorphic compare/=/<>/Hashtbl.hash instantiated at a \
       float-containing or abstract type; use Float.compare or a typed comparator \
       (int instantiations pass)" );
    ( "domain-purity",
      "[typed] closure passed to Sweep.map/map_list/map_ranges or Pool.run \
       captures mutable state (ref, Hashtbl.t, Bytes.t, Buffer.t, Queue.t, \
       Stack.t, Atomic.t, or a mutable record) from an enclosing scope; sweep \
       jobs must be self-contained" );
    ( "nondet-source",
      "[typed] Random.* global-state calls (seed an explicit Random.State.t or \
       Util.Prng instead), and wall-clock reads (Sys.time, Unix.gettimeofday, \
       Unix.time) in lib/ — timing belongs in bench/" );
    ("suppression", "a lint:allow annotation that is malformed or lacks a justification");
    ("parse-error", "the file could not be read or parsed");
    ("cmt-error", "[typed] a .cmt artifact could not be read or carries no implementation")
  ]

let rule_names = List.map fst rules

let hot_path_allowlist =
  [ "reed_solomon"; "gf256"; "schedule"; "simplex"; "engine"; "packing" ]

let kind_of_path path =
  let path =
    if String.length path > 1 && path.[0] = '.' && path.[1] = '/' then
      String.sub path 2 (String.length path - 2)
    else path
  in
  let first =
    match String.index_opt path '/' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  match first with
  | "lib" -> Lib
  | "bin" -> Bin
  | "bench" -> Bench
  | "test" | "tests" -> Test
  | _ -> Other

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)
(* ------------------------------------------------------------------ *)

type suppression = {
  s_rule : string;
  s_first : int;  (* first line the allowance covers *)
  s_last : int;  (* last line the allowance covers *)
  s_line : int;  (* where the annotation itself sits, for diagnostics *)
  s_justified : bool;
}

(* A justification has to say something: at least three letters once
   the separators are gone. "—" and "because" both pass; "." does not. *)
let has_substance s =
  let letters = ref 0 in
  String.iter
    (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then incr letters)
    s;
  !letters >= 3

let line_of_offset source offset =
  let n = ref 1 in
  for i = 0 to min offset (String.length source) - 1 do
    if source.[i] = '\n' then incr n
  done;
  !n

(* Enumerate real comments: a tiny lexer that skips string literals
   ("..." with escapes, {id|...|id}) and char literals, and tracks
   comment nesting — so a "(* lint: allow ... *)" spelled inside a
   string (the lint test fixtures do exactly that) is not a
   suppression. Returns (start, stop) offsets of each comment body. *)
let comments source =
  let len = String.length source in
  let acc = ref [] in
  let i = ref 0 in
  let is_lower c = (c >= 'a' && c <= 'z') || c = '_' in
  let skip_string from =
    (* from points at the opening quote *)
    let j = ref (from + 1) in
    let stop = ref false in
    while (not !stop) && !j < len do
      if source.[!j] = '\\' then j := !j + 2
      else if source.[!j] = '"' then begin
        stop := true;
        incr j
      end
      else incr j
    done;
    !j
  in
  let skip_quoted_string from =
    (* from points at '{'; matches {id| ... |id} *)
    let j = ref (from + 1) in
    while !j < len && is_lower source.[!j] do incr j done;
    if !j >= len || source.[!j] <> '|' then from + 1
    else begin
      let id = String.sub source (from + 1) (!j - from - 1) in
      let closing = "|" ^ id ^ "}" in
      match Str.search_forward (Str.regexp_string closing) source (!j + 1) with
      | k -> k + String.length closing
      | exception Not_found -> len
    end
  in
  while !i < len do
    let c = source.[!i] in
    if c = '(' && !i + 1 < len && source.[!i + 1] = '*' then begin
      let start = !i in
      let depth = ref 1 in
      let j = ref (!i + 2) in
      while !depth > 0 && !j + 1 < len do
        if source.[!j] = '(' && source.[!j + 1] = '*' then begin
          incr depth;
          j := !j + 2
        end
        else if source.[!j] = '*' && source.[!j + 1] = ')' then begin
          decr depth;
          j := !j + 2
        end
        else incr j
      done;
      acc := (start, min !j len) :: !acc;
      i := !j
    end
    else if c = '"' then i := skip_string !i
    else if c = '{' then i := skip_quoted_string !i
    else if c = '\'' then begin
      (* char literal or type variable: 'x' / '\n' / '\xFF' vs 'a *)
      if !i + 2 < len && source.[!i + 1] <> '\\' && source.[!i + 2] = '\'' then
        i := !i + 3
      else if !i + 1 < len && source.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < len && source.[!j] <> '\'' && !j - !i < 6 do incr j done;
        i := !j + 1
      end
      else incr i
    end
    else incr i
  done;
  List.rev !acc

(* [(* lint: allow <rule> — <justification> *)] comments. The comment
   covers its own last line and the line below, so it can sit at the
   end of the offending line or directly above it. *)
let comment_suppressions source =
  let re = Str.regexp "(\\*[ \t]*lint:[ \t]*allow[ \t]+\\([A-Za-z0-9_-]+\\)" in
  List.filter_map
    (fun (start, stop) ->
      match Str.search_forward re source start with
      | at when at = start && Str.match_end () <= stop ->
        let rule = Str.matched_group 1 source in
        let justification = String.sub source (Str.match_end ()) (stop - Str.match_end ()) in
        let line = line_of_offset source stop in
        Some
          { s_rule = rule;
            s_first = line;
            s_last = line + 1;
            s_line = line_of_offset source start;
            s_justified = has_substance justification
          }
      | _ | (exception Not_found) -> None)
    (comments source)

(* [@lint.allow "rule" "justification"] payloads: collect every string
   constant (and bare identifier, with _ read as -) in the payload;
   the first is the rule, the rest are the justification. *)
let decode_allow_payload payload =
  let words = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> words := s :: !words
          | Pexp_ident { txt = Longident.Lident id; _ } ->
            words := String.map (fun c -> if c = '_' then '-' else c) id :: !words
          | _ -> ());
          Ast_iterator.default_iterator.expr self e)
    }
  in
  (match payload with PStr str -> it.structure it str | _ -> ());
  match List.rev !words with
  | [] -> None
  | rule :: rest -> Some (rule, String.concat " " rest)

let attr_suppressions attrs (loc : Location.t) =
  List.filter_map
    (fun a ->
      if a.attr_name.txt <> "lint.allow" then None
      else
        match decode_allow_payload a.attr_payload with
        | None ->
          Some
            { s_rule = "";
              s_first = 0;
              s_last = -1;
              s_line = a.attr_loc.loc_start.pos_lnum;
              s_justified = false
            }
        | Some (rule, justification) ->
          Some
            { s_rule = rule;
              s_first = loc.loc_start.pos_lnum;
              s_last = loc.loc_end.pos_lnum;
              s_line = a.attr_loc.loc_start.pos_lnum;
              s_justified = has_substance justification
            })
    attrs

(* ------------------------------------------------------------------ *)
(* Rule checks over the Parsetree                                      *)
(* ------------------------------------------------------------------ *)

let flatten lid = Longident.flatten lid

let is_float_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "float"; _ }, [])
  | Ptyp_constr ({ txt = Ldot (Lident ("Stdlib" | "Float"), ("float" | "t")); _ }, []) ->
    true
  | _ -> false

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

(* Syntactic float evidence. [infinity]/[neg_infinity] are deliberately
   absent: comparing against an exact IEEE infinity is well-defined and
   idiomatic (Rtf.lrb returns it as a sentinel), whereas [nan] equality
   is always false and always a bug. *)
let rec floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, t) -> is_float_type t
  | Pexp_ident { txt = Lident ("nan" | "epsilon_float" | "max_float" | "min_float"); _ } ->
    true
  | Pexp_ident { txt = Ldot (Lident "Float", _); _ } -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    match flatten txt with
    | [ op ] | [ "Stdlib"; op ] when List.mem op float_ops -> true
    | [ "float_of_int" ] | [ "Stdlib"; "float_of_int" ] -> true
    | [ "Float"; f ] -> f <> "to_int" && f <> "compare" && f <> "equal"
    | [ ("min" | "max") ] | [ "Stdlib"; ("min" | "max") ] ->
      List.exists (fun (_, a) -> floaty a) args
    | _ -> false)
  | Pexp_open (_, e) -> floaty e
  | _ -> false

let unsafe_accessors =
  [ [ "Array"; "unsafe_get" ];
    [ "Array"; "unsafe_set" ];
    [ "Bytes"; "unsafe_get" ];
    [ "Bytes"; "unsafe_set" ];
    [ "String"; "unsafe_get" ]
  ]

let partial_accessors =
  [ ([ "List"; "hd" ], "match on the list or justify why it is non-empty");
    ([ "List"; "tl" ], "match on the list or justify why it is non-empty");
    ([ "List"; "nth" ], "use List.nth_opt, an array, or justify the bound");
    ([ "Option"; "get" ], "match on the option or use Option.value");
    ([ "Hashtbl"; "find" ], "use Hashtbl.find_opt or justify key presence")
  ]

(* Compiler intrinsics that skip bounds checks entirely — the word-wide
   escape hatch the unsafe_get/set rule would otherwise miss. The
   trailing 'u' is the unchecked marker ("%caml_bytes_get64u" vs the
   checked "%caml_bytes_get64"). *)
let unchecked_primitive name =
  let prefixes =
    [ "%caml_bytes_get"; "%caml_bytes_set"; "%caml_string_get"; "%caml_string_set";
      "%caml_bigstring_get"; "%caml_bigstring_set"
    ]
  in
  String.length name > 0
  && name.[String.length name - 1] = 'u'
  && List.exists (fun p -> String.starts_with ~prefix:p name) prefixes

let print_functions =
  [ [ "print_endline" ]; [ "print_string" ]; [ "print_newline" ]; [ "print_char" ];
    [ "print_int" ]; [ "print_float" ]; [ "prerr_endline" ]; [ "prerr_string" ];
    [ "prerr_newline" ]; [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ]
  ]

(* lib/sim/report.ml and lib/util/table.ml are the sanctioned output
   layer itself; the rule would be circular there. *)
let print_exempt_basenames = [ "report.ml"; "table.ml" ]

let is_unit_expr (e : expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "()"; _ }, None) -> true
  | _ -> false

let module_basename file =
  Filename.remove_extension (Filename.basename file)

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let collect ~kind ~file structure =
  let findings = ref [] in
  let suppressions = ref [] in
  let report ?(suppressible = true) rule (loc : Location.t) message =
    findings :=
      { rule;
        file;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        message;
        suppressible
      }
      :: !findings
  in
  let in_hot_allowlist = List.mem (module_basename file) hot_path_allowlist in
  let check_ident txt (loc : Location.t) =
    let parts = strip_stdlib (flatten txt) in
    let name = String.concat "." parts in
    if List.mem parts unsafe_accessors then begin
      if in_hot_allowlist then
        report "unsafe-indexing" loc
          (Printf.sprintf
             "%s in hot-path module '%s' still needs a justification: annotate with \
              (* lint: allow unsafe-indexing — <bounds argument> *)"
             name (module_basename file))
      else
        report ~suppressible:false "unsafe-indexing" loc
          (Printf.sprintf
             "%s outside the hot-path allowlist (%s); use the checked accessor or \
              move the loop into an allowlisted module"
             name
             (String.concat ", " hot_path_allowlist))
    end;
    (match List.assoc_opt parts partial_accessors with
    | Some hint when kind <> Test ->
      report "partial-stdlib" loc (Printf.sprintf "%s can raise; %s" name hint)
    | _ -> ());
    if kind = Lib
       && List.mem parts print_functions
       && not (List.mem (Filename.basename file) print_exempt_basenames)
    then
      report "no-print-in-lib" loc
        (Printf.sprintf
           "%s writes straight to the process streams from library code; route \
            through Sim.Report / Util.Table or a Logs source"
           name)
  in
  let check_comparison fn args (loc : Location.t) =
    match (fn.pexp_desc, args) with
    | Pexp_ident { txt; _ }, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] -> (
      match strip_stdlib (flatten txt) with
      | [ (("=" | "<>" | "==" | "!=") as op) ] when floaty a || floaty b ->
        report "float-eq" loc
          (Printf.sprintf
             "(%s) on float operands is exact bit comparison; use an epsilon \
              helper or justify why exactness is intended"
             op)
      | [ "compare" ] | [ "Float"; "compare" ] | [ "Float"; "equal" ]
        when floaty a || floaty b ->
        report "float-eq" loc
          "polymorphic/Float compare on float operands is exact; use an epsilon \
           helper or justify why exactness is intended"
      | _ -> ())
    | _ -> ()
  in
  let check_handler_cases cases =
    List.iter
      (fun c ->
        let rec catch_all (p : pattern) =
          match p.ppat_desc with
          | Ppat_any -> true
          | Ppat_or (a, b) -> catch_all a || catch_all b
          | Ppat_alias (p, _) -> catch_all p
          | _ -> false
        in
        if c.pc_guard = None && catch_all c.pc_lhs then
          report "catch-all-exn" c.pc_lhs.ppat_loc
            "'with _ ->' swallows every exception (Out_of_memory, Stack_overflow, \
             assertion failures); match the exceptions you mean"
        else
          match c.pc_lhs.ppat_desc with
          | Ppat_var _ when c.pc_guard = None && is_unit_expr c.pc_rhs ->
            report "catch-all-exn" c.pc_lhs.ppat_loc
              "handler binds the exception and returns (); either handle it or \
               let it propagate"
          | _ -> ())
      cases
  in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          suppressions := attr_suppressions e.pexp_attributes e.pexp_loc @ !suppressions;
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident txt loc
          | Pexp_apply (fn, args) -> check_comparison fn args e.pexp_loc
          | Pexp_try (_, cases) -> check_handler_cases cases
          | Pexp_match (_, cases) ->
            (* [| exception _ ->] arms are handlers too. *)
            check_handler_cases
              (List.filter_map
                 (fun c ->
                   match c.pc_lhs.ppat_desc with
                   | Ppat_exception p -> Some { c with pc_lhs = p }
                   | _ -> None)
                 cases)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          suppressions := attr_suppressions vb.pvb_attributes vb.pvb_loc @ !suppressions;
          Ast_iterator.default_iterator.value_binding self vb);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_primitive vd ->
            suppressions := attr_suppressions vd.pval_attributes si.pstr_loc @ !suppressions;
            List.iter
              (fun prim ->
                if unchecked_primitive prim then
                  if in_hot_allowlist then
                    report "unsafe-indexing" si.pstr_loc
                      (Printf.sprintf
                         "external %s = \"%s\" binds an unchecked accessor primitive; \
                          in hot-path module '%s' it still needs a justification: \
                          annotate with (* lint: allow unsafe-indexing — <bounds \
                          argument> *)"
                         vd.pval_name.txt prim (module_basename file))
                  else
                    report ~suppressible:false "unsafe-indexing" si.pstr_loc
                      (Printf.sprintf
                         "external %s = \"%s\" binds an unchecked accessor primitive \
                          outside the hot-path allowlist (%s); use checked accessors \
                          or move the kernel into an allowlisted module"
                         vd.pval_name.txt prim
                         (String.concat ", " hot_path_allowlist)))
              vd.pval_prim
          | Pstr_attribute a ->
            (* [@@@lint.allow ...]: file-wide scope. *)
            suppressions :=
              List.map
                (fun s -> if s.s_last >= s.s_first then { s with s_first = 1; s_last = max_int } else s)
                (attr_suppressions [ a ] si.pstr_loc)
              @ !suppressions
          | Pstr_eval (_, attrs) ->
            suppressions := attr_suppressions attrs si.pstr_loc @ !suppressions
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si)
    }
  in
  it.structure it structure;
  (List.rev !findings, !suppressions)

(* ------------------------------------------------------------------ *)
(* Putting it together                                                 *)
(* ------------------------------------------------------------------ *)

let suppression_hygiene ~file suppressions =
  let bad_suppressions =
    List.filter_map
      (fun s ->
        if s.s_justified then None
        else
          Some
            { rule = "suppression";
              file;
              line = s.s_line;
              col = 0;
              message =
                (if s.s_rule = "" then
                   "lint.allow payload must be (\"<rule>\" \"<justification>\")"
                 else if not (List.mem s.s_rule rule_names) then
                   Printf.sprintf "lint: allow names unknown rule '%s'" s.s_rule
                 else
                   Printf.sprintf
                     "lint: allow %s has no justification; say why the site is safe"
                     s.s_rule);
              suppressible = false
            })
      suppressions
  in
  let unknown =
    List.filter_map
      (fun s ->
        if s.s_justified && not (List.mem s.s_rule rule_names) then
          Some
            { rule = "suppression";
              file;
              line = s.s_line;
              col = 0;
              message = Printf.sprintf "lint: allow names unknown rule '%s'" s.s_rule;
              suppressible = false
            }
        else None)
      suppressions
  in
  bad_suppressions @ unknown

let filter_suppressed findings suppressions =
  let suppressed f =
    f.suppressible
    && List.exists
         (fun s ->
           s.s_justified && s.s_rule = f.rule && f.line >= s.s_first && f.line <= s.s_last)
         suppressions
  in
  List.filter (fun f -> not (suppressed f)) findings

let apply_suppressions ~file findings suppressions =
  filter_suppressed findings suppressions @ suppression_hygiene ~file suppressions

let sort_findings fs =
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
      | c -> c)
    fs

let parse_error ~file message =
  [ { rule = "parse-error"; file; line = 1; col = 0; message; suppressible = false } ]

let lint_source ~kind ~file source =
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf file;
    Parse.implementation lexbuf
  with
  | structure ->
    let findings, attr_sups = collect ~kind ~file structure in
    let sups = comment_suppressions source @ attr_sups in
    sort_findings (apply_suppressions ~file findings sups)
  | exception exn ->
    let message =
      match Location.error_of_exn exn with
      | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
      | _ -> Printexc.to_string exn
    in
    parse_error ~file (String.map (fun c -> if c = '\n' then ' ' else c) message)

(* The typed stage reports findings positioned in the original source,
   so it shares this file's suppression machinery: parse the source for
   attribute allowances (findings from [collect] are discarded) and add
   the comment allowances. A source that no longer parses still honours
   comment allowances — the comment scanner is parse-free. *)
let suppressions_of_source ~file source =
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf file;
    Parse.implementation lexbuf
  with
  | structure ->
    let _, attr_sups = collect ~kind:Other ~file structure in
    comment_suppressions source @ attr_sups
  | exception _ -> comment_suppressions source

let lint_file ?kind file =
  let kind = match kind with Some k -> k | None -> kind_of_path file in
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> parse_error ~file e
  | source ->
    if Filename.check_suffix file ".mli" then (
      (* Interfaces carry no expression rules; parsing them still
         catches syntax rot in files dune may not rebuild. *)
      match
        let lexbuf = Lexing.from_string source in
        Location.init lexbuf file;
        Parse.interface lexbuf
      with
      | _ -> []
      | exception exn ->
        parse_error ~file
          (match Location.error_of_exn exn with
          | Some (`Ok err) ->
            String.map
              (fun c -> if c = '\n' then ' ' else c)
              (Format.asprintf "%a" Location.print_report err)
          | _ -> Printexc.to_string exn))
    else lint_source ~kind ~file source

let missing_mlis ~exists paths =
  List.filter_map
    (fun path ->
      if
        Filename.check_suffix path ".ml"
        && kind_of_path path = Lib
        && not (exists (path ^ "i"))
      then
        Some
          { rule = "mli-required";
            file = path;
            line = 1;
            col = 0;
            message =
              Printf.sprintf "%s has no %si: every lib module keeps an explicit interface"
                (Filename.basename path) (Filename.basename path);
            suppressible = false
          }
      else None)
    paths
