(* s3lint typed stage: passes over the Typedtree, loaded from the
   .cmt artifacts the dune build already produces (-bin-annot is on by
   default), so every check sees inferred types instead of syntactic
   evidence. Four passes guard the repo's headline property — that
   every accumulation the planner performs is order-deterministic, so
   incremental/full-rescan engines and parallel/sequential sweeps stay
   byte-identical:

   - hashtbl-order   : Hashtbl.fold/iter bodies that accumulate into an
                       order-sensitive structure without re-sorting;
   - poly-compare    : polymorphic compare/=/<>/Hashtbl.hash
                       instantiated at float-containing or abstract
                       types (int instantiations pass);
   - domain-purity   : Sweep/Pool job closures capturing mutable state
                       from an enclosing scope;
   - nondet-source   : global-state Random.* anywhere, wall-clock reads
                       in lib/.

   Version notes: the walk uses Tast_iterator and never matches
   Texp_function directly (its representation changed in 5.2); lambda
   arguments are analysed as whole subtrees, with bound-vs-used ident
   sets standing in for a closure-capture analysis. *)

open Typedtree

let report ?(suppressible = true) findings rule ~file (loc : Location.t) message =
  findings :=
    { Rules.rule;
      file;
      line = loc.loc_start.pos_lnum;
      col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
      message;
      suppressible
    }
    :: !findings

(* ------------------------------------------------------------------ *)
(* Environment plumbing                                                *)
(* ------------------------------------------------------------------ *)

(* .cmt files store environments as summaries; reconstructing them (for
   Env.find_type on nominal types) needs the cmi files of every library
   on the load path. [init] threads the .objs directories through
   Clflags.include_dirs — the one version-stable knob — before
   Compmisc.init_path rebuilds the load path. Every env-dependent check
   degrades gracefully: on any lookup failure the pass falls back to
   the structural type information already in the node. *)
let init ~dirs =
  Clflags.include_dirs := dirs @ !Clflags.include_dirs;
  Compmisc.init_path ();
  Envaux.reset_cache ()

let real_env env = try Envaux.env_of_only_summary env with _ -> env

(* ------------------------------------------------------------------ *)
(* Path and type helpers                                               *)
(* ------------------------------------------------------------------ *)

(* "Stdlib__Hashtbl.fold" / "Stdlib.Hashtbl.fold" -> ["Hashtbl"; "fold"]:
   split on '.' and the '__' of flattened module names, then drop the
   Stdlib qualifier, so matching is stable across alias resolution. *)
(* Structural decomposition — [Path.name] followed by splitting on '.'
   would mangle operator idents like [+.] into ["+"; ""]. Module names
   are still split on "__" ([Stdlib__Hashtbl]), but an ident component
   is kept verbatim. *)
let path_parts p =
  let split_mod s = Str.split_delim (Str.regexp_string "__") s |> List.filter (( <> ) "") in
  let rec go p =
    match p with
    | Path.Pident id -> [ Ident.name id ]
    | Path.Pdot (prefix, s) -> List.concat_map split_mod (go prefix) @ [ s ]
    | Path.Papply (a, b) -> go a @ go b
    | _ -> split_mod (Path.name p) (* Pextra_ty etc. — type paths, not values *)
  in
  match go p with "Stdlib" :: rest -> rest | parts -> parts

let suffix_is suffix parts =
  let ls = List.length suffix and lp = List.length parts in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  lp >= ls && drop (lp - ls) parts = suffix

let get_desc = Types.get_desc

(* Does [ty] contain a float (or float array) anywhere reachable —
   through tuples, type parameters, aliases, record fields and variant
   arguments? Depth-bounded so recursive types terminate; env lookups
   are best-effort. *)
let rec contains_float env depth ty =
  depth < 12
  &&
  match get_desc ty with
  | Types.Ttuple ts -> List.exists (contains_float env (depth + 1)) ts
  | Types.Tconstr (p, args, _) ->
    Path.same p Predef.path_float
    || Path.same p Predef.path_floatarray
    || List.exists (contains_float env (depth + 1)) args
    || decl_contains_float env depth p
  | _ -> false

and decl_contains_float env depth p =
  match Env.find_type p env with
  | decl -> (
    match decl.Types.type_manifest with
    | Some t -> contains_float env (depth + 1) t
    | None -> (
      match decl.Types.type_kind with
      | Types.Type_record (lbls, _) ->
        List.exists (fun l -> contains_float env (depth + 1) l.Types.ld_type) lbls
      | Types.Type_variant (cstrs, _) ->
        List.exists
          (fun c ->
            match c.Types.cd_args with
            | Types.Cstr_tuple ts -> List.exists (contains_float env (depth + 1)) ts
            | Types.Cstr_record lbls ->
              List.exists (fun l -> contains_float env (depth + 1) l.Types.ld_type) lbls)
          cstrs
      | _ -> false))
  | exception _ -> false

(* Structural predef types that polymorphic comparison handles without
   surprises (their parameters are checked separately). *)
let comparable_predef =
  [ Predef.path_int; Predef.path_char; Predef.path_string; Predef.path_bytes;
    Predef.path_bool; Predef.path_unit; Predef.path_int32; Predef.path_int64;
    Predef.path_nativeint; Predef.path_list; Predef.path_option; Predef.path_array
  ]

(* Is the head of [ty] an abstract (opaque) nominal type? Looking the
   declaration up can fail for types from units whose cmi is off the
   load path; failure means "not provably abstract", never a finding. *)
let abstract_head env depth ty =
  if depth > 12 then None
  else
    match get_desc ty with
    | Types.Tconstr (p, _, _) when not (List.exists (Path.same p) comparable_predef)
      -> (
      match Env.find_type p env with
      | decl -> (
        match (decl.Types.type_manifest, decl.Types.type_kind) with
        | Some _, _ -> None (* alias; the manifest is checked via contains_float *)
        | None, (Types.Type_record _ | Types.Type_variant _ | Types.Type_open) -> None
        | None, _ -> Some (Path.name p))
      | exception _ -> None)
    | _ -> None

let rec first_arrow_arg ty =
  match get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

let is_arrow ty = first_arrow_arg ty <> None

(* Mutable-state classification for domain-purity: the types whose
   capture in a sweep job means cross-domain shared mutation. Arrays
   are deliberately absent — writing each job's result into its own
   index slot is the sanctioned merge pattern (DESIGN.md §9). *)
let mutable_containers =
  [ [ "ref" ]; [ "Hashtbl"; "t" ]; [ "Buffer"; "t" ]; [ "Queue"; "t" ];
    [ "Stack"; "t" ]; [ "Atomic"; "t" ]
  ]

let mutable_type_witness env ty =
  let rec go depth ty =
    if depth > 6 then None
    else
      match get_desc ty with
      | Types.Tconstr (p, _, _) when Path.same p Predef.path_bytes -> Some "Bytes.t"
      | Types.Tconstr (p, _, _) -> (
        let parts = path_parts p in
        match
          List.find_opt (fun suffix -> suffix_is suffix parts) mutable_containers
        with
        | Some suffix -> Some (String.concat "." suffix)
        | None -> (
          match Env.find_type p env with
          | decl -> (
            match (decl.Types.type_kind, decl.Types.type_manifest) with
            | Types.Type_record (lbls, _), _
              when List.exists (fun l -> l.Types.ld_mutable <> Asttypes.Immutable) lbls
              -> Some (Path.name p ^ " (mutable record)")
            | _, Some t -> go (depth + 1) t
            | _ -> None)
          | exception _ -> None))
      | _ -> None
  in
  go 0 ty

(* ------------------------------------------------------------------ *)
(* Sub-walks over argument subtrees                                    *)
(* ------------------------------------------------------------------ *)

(* Order-sensitive accumulation evidence inside a fold/iter body:
   consing onto a variable (or onto [!r]), float +./*. into the
   accumulator, string ^, list @, Buffer.add_*. List literals
   ([1; 2] chains ending in []) are not evidence — only cons whose
   tail is an accumulator-shaped expression.

   Float arithmetic is only a witness when it plausibly feeds the
   accumulation: for a fold, [float_acc] says the accumulator type
   contains a float (a bool fold with an incidental [x +. eps]
   comparison is order-safe); for an iter, the arithmetic must read a
   ref that the body itself assigns ([sum := !sum +. x]) — per-key
   [Hashtbl.replace] updates computed from read-only outer state are
   not cross-iteration accumulation. *)
let accumulation_evidence ~float_acc body =
  let witness = ref None in
  let note w = if !witness = None then witness := Some w in
  let scan f =
    let it =
      { Tast_iterator.default_iterator with
        expr = (fun self e -> f e; Tast_iterator.default_iterator.expr self e)
      }
    in
    it.expr it body
  in
  (* Refs the body itself assigns — the accumulation targets an iter
     body can have. *)
  let assigned = ref [] in
  scan (fun e ->
      match e.exp_desc with
      | Texp_apply
          ( { exp_desc = Texp_ident (p, _, _); _ },
            (_, Some { exp_desc = Texp_ident (q, _, _); _ }) :: _ )
        when path_parts p = [ ":=" ] ->
        assigned := q :: !assigned
      | _ -> ());
  let reads_assigned_ref e0 =
    let hit = ref false in
    let it =
      { Tast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.exp_desc with
            | Texp_apply
                ( { exp_desc = Texp_ident (p, _, _); _ },
                  [ (_, Some { exp_desc = Texp_ident (q, _, _); _ }) ] )
              when path_parts p = [ "!" ] && List.exists (Path.same q) !assigned ->
              hit := true
            | _ -> ());
            Tast_iterator.default_iterator.expr self e)
      }
    in
    it.expr it e0;
    !hit
  in
  let is_acc_shaped (e : expression) =
    match e.exp_desc with
    | Texp_ident _ -> true
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ _ ]) ->
      path_parts p = [ "!" ]
    | _ -> false
  in
  scan (fun e ->
      match e.exp_desc with
      | Texp_construct (_, cstr, args) when cstr.Types.cstr_name = "::" -> (
        match args with
        | [ _; tail ] when is_acc_shaped tail -> note "list cons (::)"
        | _ -> ())
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let operands = List.filter_map snd args in
        let feeds_acc () =
          (float_acc && List.exists is_acc_shaped operands)
          || List.exists reads_assigned_ref operands
        in
        match path_parts p with
        | [ "+." ] -> if feeds_acc () then note "float accumulation (+.)"
        | [ "*." ] -> if feeds_acc () then note "float accumulation (*.)"
        | [ "^" ] ->
          if List.exists is_acc_shaped operands || List.exists reads_assigned_ref operands
          then note "string concatenation (^)"
        | [ "@" ] ->
          if List.exists is_acc_shaped operands || List.exists reads_assigned_ref operands
          then note "list append (@)"
        | [ "Buffer"; f ] when String.length f >= 3 && String.sub f 0 3 = "add" ->
          note ("Buffer." ^ f)
        | _ -> ())
      | _ -> ());
  !witness

(* Free identifiers of an argument subtree: every local ident used but
   not bound by any pattern inside it. Over-approximates captures with
   same-unit module-level bindings — which is intended: a module-level
   Hashtbl reached from a sweep job is exactly the shared-state hazard
   the pass exists for. *)
let free_idents expr =
  let bound = ref [] in
  let used = ref [] in
  let it =
    { Tast_iterator.default_iterator with
      pat =
        (fun (type k) self (p : k general_pattern) ->
          (* pat_bound_idents is version-stable where the Tpat_var
             constructor arity is not; visiting every sub-pattern adds
             duplicates, which are harmless. *)
          bound := pat_bound_idents p @ !bound;
          Tast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
            used := (id, e.exp_type, e.exp_env, e.exp_loc) :: !used
          | _ -> ());
          Tast_iterator.default_iterator.expr self e)
    }
  in
  it.expr it expr;
  List.filter
    (fun (id, _, _, _) -> not (List.exists (Ident.same id) !bound))
    (List.rev !used)

(* ------------------------------------------------------------------ *)
(* The pass driver                                                     *)
(* ------------------------------------------------------------------ *)

let sort_functions =
  [ [ "List"; "sort" ]; [ "List"; "stable_sort" ]; [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ]
  ]

let is_sort_app (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    List.exists (fun s -> suffix_is s (path_parts p)) sort_functions
  | _ -> false

(* Exact paths (after Stdlib-stripping): suffix matching would also
   catch Float.compare / Int.compare, which are precisely the fixes. *)
let poly_compare_names = [ [ "compare" ]; [ "=" ]; [ "<>" ]; [ "Hashtbl"; "hash" ];
                           [ "Hashtbl"; "seeded_hash" ] ]

let is_poly_compare p = List.mem (path_parts p) poly_compare_names

let wall_clock_names = [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ];
                         [ "Unix"; "time" ]; [ "Unix"; "times" ] ]

let job_spawn_names =
  [ [ "Sweep"; "map" ]; [ "Sweep"; "map_list" ]; [ "Sweep"; "map_ranges" ];
    [ "Pool"; "run" ]
  ]

let positional (args : (Asttypes.arg_label * expression option) list) =
  List.filter_map (function Asttypes.Nolabel, Some e -> Some e | _ -> None) args

let all_args (args : (Asttypes.arg_label * expression option) list) =
  List.filter_map (function _, Some e -> Some e | _ -> None) args

let analyze ~kind ~file structure =
  let findings = ref [] in
  (* Locations of fold applications that flow straight into a sort
     (direct argument, or through |> / @@), sanctioned for
     hashtbl-order. Parents are visited before children, so the set is
     populated before the fold itself is examined. *)
  let sanctioned : Location.t list ref = ref [] in
  let sanction (e : expression) = sanctioned := e.exp_loc :: !sanctioned in
  let note_sort_context (e : expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let parts = path_parts p in
      if List.exists (fun s -> suffix_is s parts) sort_functions then (
        (* List.sort cmp data: the data operand is the last positional. *)
        match List.rev (positional args) with
        | data :: _ -> sanction data
        | [] -> ())
      else
        match (parts, positional args) with
        | [ "|>" ], [ data; fn ] when is_sort_app fn -> sanction data
        | [ "@@" ], [ fn; data ] when is_sort_app fn -> sanction data
        | _ -> ())
    (* [x |> List.sort cmp] and [List.sort cmp @@ x] are rewritten by
       the typechecker into a nested apply whose function is the sort
       partial application — the pipe operator never reaches the
       Typedtree. *)
    | Texp_apply (fn, args) when is_sort_app fn -> (
      match List.rev (positional args) with
      | data :: _ -> sanction data
      | [] -> ())
    | _ -> ()
  in
  let check_hashtbl_order (e : expression) =
    if kind <> Rules.Test then
      match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        let parts = path_parts p in
        let op =
          if suffix_is [ "Hashtbl"; "fold" ] parts then Some "Hashtbl.fold"
          else if suffix_is [ "Hashtbl"; "iter" ] parts then Some "Hashtbl.iter"
          else None
        in
        match (op, positional args) with
        | Some op, body :: _ when not (List.mem e.exp_loc !sanctioned) -> (
          (* For a fully-applied fold the application's type IS the
             accumulator type; iter returns unit, so this is false. *)
          let float_acc = contains_float (real_env e.exp_env) 0 e.exp_type in
          match accumulation_evidence ~float_acc body with
          | Some witness ->
            report findings "hashtbl-order" ~file e.exp_loc
              (Printf.sprintf
                 "%s accumulates via %s in hash-bucket order, which is not a \
                  stable public order; materialize and sort by a total key \
                  (e.g. |> List.sort), or justify with a lint: allow"
                 op witness)
          | None -> ())
        | _ -> ())
      | _ -> ()
  in
  (* Operator idents whose enclosing application already decided the
     verdict (constant-constructor comparisons like [xs = []] are
     tag-only and safe); the bare-ident visit skips these. *)
  let decided : Location.t list ref = ref [] in
  let is_constant_constructor (e : expression) =
    match e.exp_desc with
    | Texp_construct (_, cstr, []) -> cstr.Types.cstr_arity = 0
    | _ -> false
  in
  let flag_poly_compare (fn : expression) p =
    let name = String.concat "." (path_parts p) in
    match first_arrow_arg fn.exp_type with
    | None -> ()
    | Some arg_ty -> (
      let env = real_env fn.exp_env in
      if contains_float env 0 arg_ty then
        report findings "poly-compare" ~file fn.exp_loc
          (Printf.sprintf
             "polymorphic %s instantiated at a float-containing type compares \
              raw IEEE bits; use Float.compare/Float.equal or a typed \
              comparator on the float field"
             name)
      else
        match abstract_head env 0 arg_ty with
        | Some tyname ->
          report findings "poly-compare" ~file fn.exp_loc
            (Printf.sprintf
               "polymorphic %s instantiated at abstract type %s reads \
                unspecified representation; expose and use a dedicated \
                comparator"
               name tyname)
        | None -> ())
  in
  let check_poly_compare (e : expression) =
    if kind <> Rules.Test then
      match e.exp_desc with
      | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args)
        when is_poly_compare p ->
        decided := fn.exp_loc :: !decided;
        (* [xs = []] / [o <> None] compare the head constructor tag
           and return before any float is reached: safe at any type. *)
        if not (List.exists is_constant_constructor (positional args)) then
          flag_poly_compare fn p
      | Texp_ident (p, _, _) when is_poly_compare p ->
        if not (List.mem e.exp_loc !decided) then flag_poly_compare e p
      | _ -> ()
  in
  let check_domain_purity (e : expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when List.exists (fun s -> suffix_is s (path_parts p)) job_spawn_names ->
      let spawn = String.concat "." (path_parts p) in
      List.iter
        (fun (arg : expression) ->
          (* Only inline closures are analysed: a named function passed
             by ident has its body elsewhere (and typically in scope
             the author vetted); the self-containment rule is about
             ad-hoc lambdas grabbing enclosing mutable state. *)
          match arg.exp_desc with
          | Texp_ident _ -> ()
          | _ when is_arrow arg.exp_type ->
            (* One finding per captured ident, not per occurrence. *)
            let seen = ref [] in
            List.iter
              (fun (id, ty, env, loc) ->
                if List.exists (Ident.same id) !seen then ()
                else begin
                  seen := id :: !seen;
                  match mutable_type_witness (real_env env) ty with
                | Some witness ->
                  report findings "domain-purity" ~file loc
                    (Printf.sprintf
                       "job closure passed to %s captures '%s' : %s from an \
                        enclosing scope; sweep jobs must be self-contained \
                        (derive state from the job index — DESIGN.md §9)"
                       spawn (Ident.name id) witness)
                  | None -> ()
                end)
              (free_idents arg)
          | _ -> ())
        (all_args args)
    | _ -> ()
  in
  let check_nondet (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      let parts = path_parts p in
      (match parts with
      | [ "Random"; f ]
        when kind = Rules.Lib || kind = Rules.Bin || kind = Rules.Other ->
        report findings "nondet-source" ~file e.exp_loc
          (Printf.sprintf
             "Random.%s draws from the global generator — unseeded and shared \
              across domains; thread an explicit seeded Random.State.t or \
              Util.Prng value instead"
             f)
      | _ -> ());
      if kind = Rules.Lib
         && List.exists (fun s -> suffix_is s parts) wall_clock_names
      then
        report findings "nondet-source" ~file e.exp_loc
          (Printf.sprintf
             "%s reads the wall clock from library code; timing belongs in \
              bench/ (or justify a diagnostic that is excluded from \
              fingerprints)"
             (String.concat "." parts)))
    | _ -> ()
  in
  let it =
    { Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          note_sort_context e;
          check_hashtbl_order e;
          check_poly_compare e;
          check_domain_purity e;
          check_nondet e;
          Tast_iterator.default_iterator.expr self e)
    }
  in
  it.structure it structure;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* cmt loading                                                         *)
(* ------------------------------------------------------------------ *)

let cmt_error ~file message =
  [ { Rules.rule = "cmt-error"; file; line = 1; col = 0; message; suppressible = false } ]

let read_source path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> Some s
  | exception Sys_error _ -> None

let lint_cmt ?kind ?(source_root = ".") path =
  match Cmt_format.read_cmt path with
  | exception exn ->
    cmt_error ~file:path (Printf.sprintf "cannot read cmt: %s" (Printexc.to_string exn))
  | infos -> (
    match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation structure, Some src ->
      let kind = match kind with Some k -> k | None -> Rules.kind_of_path src in
      let findings = analyze ~kind ~file:src structure in
      (match read_source (Filename.concat source_root src) with
      | Some source ->
        let sups = Rules.suppressions_of_source ~file:src source in
        let findings = Rules.filter_suppressed findings sups in
        (* The typed poly-compare pass and the syntactic float-eq rule
           see the same hazard from two sides; a justified float-eq
           allowance covers the typed view of that site too, so one
           annotation suffices. *)
        let findings =
          List.filter
            (fun (f : Rules.finding) ->
              f.Rules.rule <> "poly-compare"
              || Rules.filter_suppressed [ { f with Rules.rule = "float-eq" } ] sups
                 <> [])
            findings
        in
        Rules.sort_findings findings
      | None ->
        (* Source unavailable (generated module, stale artifact):
           suppressions cannot be honoured, so report nothing rather
           than unsuppressible noise about code nobody wrote. *)
        [])
    | Cmt_format.Implementation _, None -> []
    | _, _ -> [] (* interfaces, partial implementations: nothing to check *))

(* Walk [root] (entering dot-directories — dune hides .objs there) and
   collect every .cmt file. *)
let rec cmt_files_under root acc =
  if Sys.is_directory root then
    Array.fold_left
      (fun acc entry -> cmt_files_under (Filename.concat root entry) acc)
      acc
      (let entries = Sys.readdir root in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix root ".cmt" then root :: acc
  else acc

let cmt_files_under root = List.rev (cmt_files_under root [])
