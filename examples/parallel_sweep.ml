(* Parallel evaluation sweep: scenario replications across CPU cores.

   Each replication is fully self-contained — it builds its own
   topology and algorithm instances and seeds its PRNG from the
   replication index — so the sweep can fan out over domains
   (S3_par.Sweep) while producing byte-identical results to a
   sequential run. We replicate a pressured Fig. 2-style comparison
   over independent workloads and report the across-replication spread
   that a single run hides.

   Run with: dune exec examples/parallel_sweep.exe
   Set S3_DOMAINS to control parallelism (default: all cores). *)

module Topology = S3_net.Topology
module Generator = S3_workload.Generator
module Registry = S3_core.Registry
module Engine = S3_sim.Engine
module Metrics = S3_sim.Metrics
module Report = S3_sim.Report
module Sweep = S3_par.Sweep
module Prng = S3_util.Prng
module Stats = S3_util.Stats
module Table = S3_util.Table

let algorithms = [ "fifo"; "disedf"; "lpall"; "lpst" ]

let replications = 8

(* One replication: an independent 150-task workload at rate 1.2/s on
   a fresh 3x10 cluster, every algorithm run on the same tasks. *)
let replicate idx =
  let topo () = Topology.two_tier ~racks:3 ~servers_per_rack:10 ~cst:500. ~cta:1500. in
  let cfg =
    { Generator.num_tasks = 150;
      arrival_rate = 1.2;
      chunk_size_mb = 64.;
      code_mix = [ ((9, 6), 1.) ];
      deadline_factor = 10.;
      deadline_jitter = 0.5;
      placement = S3_storage.Placement.Rack_aware
    }
  in
  let tasks = Generator.generate (Prng.create (1000 + (17 * idx))) (topo ()) cfg in
  List.map (fun name -> Engine.run (topo ()) (Registry.make name) tasks) algorithms

let () =
  let domains = Sweep.domain_count () in
  Printf.printf "sweep: %d replications x %d algorithms on %d domain(s)\n%!" replications
    (List.length algorithms) domains;
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let runs, elapsed = timed (fun () -> Sweep.map ~domains replications replicate) in
  Printf.printf "parallel sweep finished in %.2fs\n" elapsed;

  (* Aggregate per algorithm across replications. *)
  let rows =
    List.mapi
      (fun ai name ->
        let samples =
          Array.to_list
            (Array.map
               (fun runs_of_rep ->
                 Metrics.completed_fraction (List.nth runs_of_rep ai))
               runs)
        in
        let pct v = 100. *. v in
        [ (Registry.make name).S3_core.Algorithm.name;
          Printf.sprintf "%.1f%%" (pct (Stats.mean samples));
          Printf.sprintf "%.1f%%" (pct (Stats.minimum samples));
          Printf.sprintf "%.1f%%" (pct (Stats.maximum samples));
          Printf.sprintf "%.1f" (pct (Stats.stddev samples))
        ])
      algorithms
  in
  print_endline
    (Table.render
       ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "algorithm"; "mean done"; "min"; "max"; "stddev(pp)" ]
       rows);

  (* Determinism check: a 1-domain rerun fingerprints identically. *)
  let fp runs_array =
    Array.to_list runs_array
    |> List.concat_map (fun rs -> List.map Report.fingerprint rs)
  in
  let seq, _ = timed (fun () -> Sweep.map ~domains:1 replications replicate) in
  Printf.printf "deterministic vs sequential rerun: %b\n" (fp runs = fp seq)
