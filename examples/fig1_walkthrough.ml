(* The paper's illustrative example (Fig. 1 / Table 2), narrated.

   Three repair tasks with deadlines 10 / 10.5 / 15 seconds compete for
   a 3-rack network. Shortest-path + first-fit and EDF both miss a
   deadline; LPST's joint optimization — prioritizing by Remaining Time
   Flexibility rather than by deadline — completes all three.

   Run with: dune exec examples/fig1_walkthrough.exe *)

module Scenarios = S3_workload.Scenarios
module Task = S3_workload.Task
module Problem = S3_core.Problem
module Rtf = S3_core.Rtf
module Registry = S3_core.Registry
module Engine = S3_sim.Engine
module Metrics = S3_sim.Metrics

let label id = String.make 1 (Char.chr (Char.code 'A' + id))

let () =
  let topo, tasks = Scenarios.fig1 () in
  print_endline "The Fig. 1 scenario: 3 racks x 3 servers, CST=2Gb/s, CTA=3Gb/s.";
  List.iter
    (fun (t : Task.t) ->
      Printf.printf "  task %s: repair %.0f Gb chunk onto server %d by t=%.1fs (k=%d of %s)\n"
        (label t.Task.id) (t.Task.volume /. 1000.) t.Task.destination t.Task.deadline t.Task.k
        (String.concat "," (List.map string_of_int (Array.to_list t.Task.sources))))
    tasks;

  (* The paper's key quantity: B has a later deadline than A but LESS
     scheduling slack. RTF sees it; EDF cannot. *)
  let view =
    { Problem.now = 0.;
      topo;
      flows = lazy [];
      available = (fun e -> (S3_net.Topology.entity topo e).S3_net.Topology.capacity);
      load = None
    }
  in
  print_endline "\nRemaining Time Flexibility at t=0 (deadline - volume/path capacity):";
  List.iter
    (fun (t : Task.t) ->
      let cap = Problem.path_available view ~src:t.Task.sources.(0) ~dst:t.Task.destination in
      let rtf = t.Task.deadline -. (t.Task.volume /. cap) in
      Printf.printf "  task %s: deadline %.1fs but RTF %.1fs\n" (label t.Task.id)
        t.Task.deadline rtf)
    tasks;
  print_endline "  -> B is the most urgent despite A's earlier deadline.";

  let show name =
    let run = Engine.run topo (Registry.make name) tasks in
    Printf.printf "\n%s: %d/3 tasks met their deadline\n" run.Metrics.algorithm
      (Metrics.completed run);
    List.iter
      (fun (o : Metrics.outcome) ->
        Printf.printf "  task %s %s\n"
          (label o.Metrics.task.Task.id)
          (if o.Metrics.completed then Printf.sprintf "done at %5.2fs" o.Metrics.finish_time
           else
             Printf.sprintf "MISSED (%.1f Gb left at t=%.1fs)" (o.Metrics.remaining /. 1000.)
               o.Metrics.task.Task.deadline))
      run.Metrics.outcomes
  in
  show "sp-ff";  (* Policy 1 of section 3.1 *)
  show "edf-cong";  (* Policy 2 of section 3.1 *)
  show "lpst";
  print_endline "\nAs in the paper: only the joint schedule finishes all three (by ~9.8s)."
